#!/usr/bin/env python3
"""Compare two rwle JSON result files and flag regressions.

Usage:
    tools/bench_compare.py BASELINE CURRENT [--threshold 0.10]
                           [--abort-delta 10.0] [--require-complete]
                           [--abort-delta-override SCHEME=PP ...]

Both files must be the same kind of document (format_version 1):

  * `rwle_bench --json=...` archives (modeled time; schema in
    EXPERIMENTS.md). Runs are matched on the key
    (scenario, scheme, panel_value, threads); for every matched pair the
    relative delta of modeled throughput

        delta = (current - baseline) / baseline

    is computed, and any |delta| > --threshold is reported as a regression
    or an improvement-to-acknowledge (both fail: an unexplained speedup
    usually means the workload changed, not that the code got faster).
    Abort rates are compared in percentage points against --abort-delta.
    Wall-clock seconds in these documents depend on the host and are never
    gated; the modeled-time formula T(N) = S + max(W, P/N) is deterministic
    for a fixed seed up to scheduling noise (measured run-to-run spread is
    ~2-3%, so the 10% default threshold has healthy margin).

  * `rwle_perf --json=...` documents (generator "rwle_perf"; wall-clock
    ns/op micro-benchmarks, schema in PERFORMANCE.md). Benchmarks are
    matched on name and gated on the relative delta of ns_per_op. Only
    *slowdowns* beyond --threshold fail -- wall-clock improvements are
    expected across hosts and are reported, not flagged. CI runs this with
    a loose threshold (cross-host variance); tighten it for A/B runs on
    one machine (workflow in PERFORMANCE.md).

Exit codes:
    0  all matched runs within thresholds
    1  at least one delta beyond threshold (or missing runs with
       --require-complete)
    2  malformed input / usage error (including mixing document kinds)
"""

import argparse
import json
import sys


def load_doc(path):
    """Parses `path` and validates format_version; exits with 2 on failure."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)

    if doc.get("format_version") != 1:
        print(
            f"bench_compare: {path}: unsupported format_version "
            f"{doc.get('format_version')!r} (expected 1)",
            file=sys.stderr,
        )
        sys.exit(2)
    return doc


def is_perf_doc(doc):
    return doc.get("generator") == "rwle_perf" or "benchmarks" in doc


def load_perf_benches(doc, path):
    """Returns {name: benchmark_dict} for an rwle_perf document."""
    benches = {}
    for bench in doc.get("benchmarks", []):
        try:
            name = bench["name"]
            float(bench["ns_per_op"])
        except (KeyError, TypeError, ValueError) as exc:
            print(
                f"bench_compare: {path}: malformed benchmark entry: {exc}",
                file=sys.stderr,
            )
            sys.exit(2)
        if name in benches:
            print(
                f"bench_compare: {path}: duplicate benchmark {name!r}",
                file=sys.stderr,
            )
            sys.exit(2)
        benches[name] = bench
    return benches


def load_runs(doc, path):
    """Returns {key: run_dict} for every result in an rwle_bench document.

    Key is (scenario, scheme, panel_value, threads, hw_profile); the
    hardware profile comes from the run's own "portability" block (the
    portability scenario names it per cell) or the manifest's hw_profile
    (a whole-invocation --hw run), and is "" for default-config documents
    -- so a lazy-hle sweep never silently gates against a power8 baseline.
    Exits with code 2 on malformed documents so gating failures are
    distinguishable from I/O or schema problems.
    """
    runs = {}
    for scenario in doc.get("scenarios", []):
        manifest = scenario.get("manifest", {})
        name = manifest.get("scenario", "?")
        for run in scenario.get("results", []):
            try:
                hw_profile = run.get("portability", {}).get(
                    "hw_profile", manifest.get("hw_profile", "")
                )
                key = (
                    name,
                    run["scheme"],
                    float(run["panel_value"]),
                    int(run["threads"]),
                    hw_profile,
                )
            except (KeyError, TypeError, ValueError) as exc:
                print(
                    f"bench_compare: {path}: malformed run in scenario "
                    f"{name}: {exc}",
                    file=sys.stderr,
                )
                sys.exit(2)
            if key in runs:
                print(
                    f"bench_compare: {path}: duplicate run {key}",
                    file=sys.stderr,
                )
                sys.exit(2)
            runs[key] = run
    return runs


def abort_rate_pct(run):
    """Aborts as a percentage of speculative attempts (commits + aborts)."""
    commits = run.get("commits", {}).get("total", 0)
    aborts = run.get("aborts", {}).get("total", 0)
    attempts = commits + aborts
    return 100.0 * aborts / attempts if attempts > 0 else 0.0


def format_key(key):
    scenario, scheme, panel, threads, hw_profile = key
    hw = f" hw={hw_profile}" if hw_profile else ""
    return f"{scenario}/{scheme} panel={panel:g} threads={threads}{hw}"


def lookup_override(overrides, key, default):
    """Resolves a per-run override: exact scenario/scheme match first, then
    the bare scheme, then the scenario wildcard, then the global default."""
    scenario, scheme = key[0], key[1]
    for candidate in (f"{scenario}/{scheme}", scheme, f"{scenario}/*"):
        if candidate in overrides:
            return overrides[candidate]
    return default


def compare_perf(args, baseline_doc, current_doc):
    """Gates rwle_perf wall-clock documents; one-sided (slowdowns fail)."""
    baseline = load_perf_benches(baseline_doc, args.baseline)
    current = load_perf_benches(current_doc, args.current)

    failures = []
    compared = 0
    for name in sorted(baseline):
        if name not in current:
            continue
        compared += 1
        base_ns = float(baseline[name]["ns_per_op"])
        cur_ns = float(current[name]["ns_per_op"])
        if base_ns <= 0.0:
            continue
        delta = (cur_ns - base_ns) / base_ns
        if delta > args.threshold:
            failures.append(
                f"{name}: wall-clock regressed {delta:+.1%} "
                f"({base_ns:.1f} -> {cur_ns:.1f} ns/op, "
                f"threshold {args.threshold:.0%})"
            )
        elif delta < -args.threshold:
            # Big improvements are informational: a faster host, or a real
            # optimization that should refresh the baseline.
            print(
                f"bench_compare: note: {name} improved {delta:+.1%} "
                f"({base_ns:.1f} -> {cur_ns:.1f} ns/op); refresh "
                f"results/baseline/perf.json if this is a code change"
            )

    missing_current = sorted(set(baseline) - set(current))
    missing_baseline = sorted(set(current) - set(baseline))
    if args.require_complete:
        failures.extend(f"missing from current: {n}" for n in missing_current)
        failures.extend(f"missing from baseline: {n}" for n in missing_baseline)

    print(
        f"bench_compare: {compared} matched perf benchmarks "
        f"({len(missing_current)} only in baseline, "
        f"{len(missing_baseline)} only in current), "
        f"threshold {args.threshold:.0%}"
    )
    if compared == 0 and not failures:
        print(
            "bench_compare: no overlapping benchmarks to compare",
            file=sys.stderr,
        )
        sys.exit(2)
    if failures:
        print(f"bench_compare: {len(failures)} check(s) failed:")
        for failure in failures:
            print(f"  FAIL {failure}")
        sys.exit(1)
    print("bench_compare: OK")
    sys.exit(0)


def main():
    parser = argparse.ArgumentParser(
        description="Compare two rwle_bench / rwle_perf JSON result files."
    )
    parser.add_argument("baseline", help="baseline results JSON")
    parser.add_argument("current", help="current results JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max |relative delta| of modeled throughput (default: 0.10)",
    )
    parser.add_argument(
        "--abort-delta",
        type=float,
        default=10.0,
        help="max abort-rate change in percentage points (default: 10.0)",
    )
    parser.add_argument(
        "--abort-delta-override",
        action="append",
        default=[],
        metavar="KEY=PP",
        help="abort-delta override for KEY, which is a scheme "
        "('rwle-chop'), a scenario/scheme pair ('capacity/hle'), or a "
        "scenario wildcard ('capacity/*'); e.g. rwle-chop=101 exempts a "
        "scheme whose abort rate is interleaving-dependent (repeatable)",
    )
    parser.add_argument(
        "--threshold-override",
        action="append",
        default=[],
        metavar="KEY=FRAC",
        help="throughput-threshold override for KEY (same key forms as "
        "--abort-delta-override), e.g. rwle-chop=0.9 for a scheme whose "
        "modeled time is interleaving-dependent: still catches collapse "
        "(a -100%% delta), ignores mid-size swings (repeatable)",
    )
    parser.add_argument(
        "--require-complete",
        action="store_true",
        help="also fail when either file has runs the other lacks",
    )
    args = parser.parse_args()
    if args.threshold <= 0:
        parser.error("--threshold must be positive")
    def parse_overrides(pairs, flag):
        overrides = {}
        for override in pairs:
            scheme, sep, value = override.partition("=")
            if not sep or not scheme:
                parser.error(f"{flag}: expected SCHEME=VALUE, got {override!r}")
            try:
                overrides[scheme] = float(value)
            except ValueError:
                parser.error(f"{flag}: bad value in {override!r}")
        return overrides

    abort_overrides = parse_overrides(
        args.abort_delta_override, "--abort-delta-override"
    )
    threshold_overrides = parse_overrides(
        args.threshold_override, "--threshold-override"
    )

    baseline_doc = load_doc(args.baseline)
    current_doc = load_doc(args.current)
    if is_perf_doc(baseline_doc) != is_perf_doc(current_doc):
        print(
            "bench_compare: cannot compare an rwle_perf document against an "
            "rwle_bench document",
            file=sys.stderr,
        )
        sys.exit(2)
    if is_perf_doc(baseline_doc):
        compare_perf(args, baseline_doc, current_doc)
        return  # unreachable: compare_perf exits

    baseline = load_runs(baseline_doc, args.baseline)
    current = load_runs(current_doc, args.current)

    failures = []
    compared = 0
    for key in sorted(baseline):
        if key not in current:
            continue
        compared += 1
        base_run, cur_run = baseline[key], current[key]

        base_tp = float(base_run.get("modeled_throughput_ops", 0.0))
        cur_tp = float(cur_run.get("modeled_throughput_ops", 0.0))
        if base_tp <= 0.0:
            if cur_tp > 0.0:
                failures.append(
                    f"{format_key(key)}: baseline throughput is 0, "
                    f"current is {cur_tp:.0f} ops/s"
                )
            continue
        delta = (cur_tp - base_tp) / base_tp
        threshold = lookup_override(threshold_overrides, key, args.threshold)
        if abs(delta) > threshold:
            direction = "regressed" if delta < 0 else "improved"
            failures.append(
                f"{format_key(key)}: modeled throughput {direction} "
                f"{delta:+.1%} ({base_tp:.0f} -> {cur_tp:.0f} ops/s, "
                f"threshold {threshold:.0%})"
            )

        abort_change = abort_rate_pct(cur_run) - abort_rate_pct(base_run)
        abort_delta = lookup_override(abort_overrides, key, args.abort_delta)
        if abs(abort_change) > abort_delta:
            failures.append(
                f"{format_key(key)}: abort rate changed {abort_change:+.1f}pp "
                f"({abort_rate_pct(base_run):.1f}% -> "
                f"{abort_rate_pct(cur_run):.1f}%, "
                f"threshold {abort_delta:g}pp)"
            )

        # Portability safety gate: a cell whose baseline committed no torn
        # reads must stay clean -- torn_committed going 0 -> nonzero means a
        # scheme lost its safety argument under that hardware profile, which
        # no throughput threshold should be able to absorb. (Raw counts are
        # interleaving-dependent, so already-dirty cells are not gated.)
        base_port = base_run.get("portability")
        cur_port = cur_run.get("portability")
        if base_port is not None and cur_port is not None:
            base_torn = int(base_port.get("torn_committed", 0))
            cur_torn = int(cur_port.get("torn_committed", 0))
            if base_torn == 0 and cur_torn > 0:
                failures.append(
                    f"{format_key(key)}: torn_committed went 0 -> {cur_torn} "
                    f"(a previously clean scheme/profile cell now commits "
                    f"torn reads)"
                )

    missing_current = sorted(set(baseline) - set(current))
    missing_baseline = sorted(set(current) - set(baseline))
    if args.require_complete:
        failures.extend(
            f"missing from current: {format_key(k)}" for k in missing_current
        )
        # A scenario that does not exist in the baseline at all is new work
        # (the baseline predates it), not an incomplete run: report it as a
        # note so CI can gate the old scenarios the moment a new one lands,
        # before the baseline is refreshed. Runs missing from a scenario the
        # baseline *does* know remain failures.
        baseline_scenarios = {k[0] for k in baseline}
        for key in missing_baseline:
            if key[0] not in baseline_scenarios:
                print(
                    f"bench_compare: note: {format_key(key)}: new scenario "
                    f"(no baseline); refresh the baseline to start gating it"
                )
            else:
                failures.append(f"missing from baseline: {format_key(key)}")

    print(
        f"bench_compare: {compared} matched runs "
        f"({len(missing_current)} only in baseline, "
        f"{len(missing_baseline)} only in current), "
        f"threshold {args.threshold:.0%}"
    )
    if compared == 0 and not failures:
        print("bench_compare: no overlapping runs to compare", file=sys.stderr)
        sys.exit(2)
    if failures:
        print(f"bench_compare: {len(failures)} check(s) failed:")
        for failure in failures:
            print(f"  FAIL {failure}")
        sys.exit(1)
    print("bench_compare: OK")
    sys.exit(0)


if __name__ == "__main__":
    main()
