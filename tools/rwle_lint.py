#!/usr/bin/env python3
"""rwle_lint: static checker for the project's concurrency invariants.

Thin launcher for the tools/rwle_lint/ package so the tool is runnable as
`python3 tools/rwle_lint.py` from anywhere without installation. The real
implementation (backends, checks, waiver engine) lives in the package; see
DESIGN.md §11 for the invariant catalogue and EXPERIMENTS.md for usage.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from rwle_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
