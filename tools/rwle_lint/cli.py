"""rwle_lint command line driver.

Exit codes (wired into tools/lint.sh and the CI static-analysis job):
  0 -- no findings
  1 -- findings (including waiver errors)
  2 -- environment or usage error (bad check name, unreadable file,
       --require-libclang without libclang, parse failure)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from rwle_lint import clang_backend, compiledb
from rwle_lint.checks import ALL_CHECKS, KNOWN_CHECK_NAMES, check_names
from rwle_lint.diagnostics import apply_waivers
from rwle_lint.lexer import LexError
from rwle_lint.source import SourceFile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="rwle_lint",
        description="Static checker for the project's concurrency invariants: "
                    "fabric-access discipline, memory-order comments, "
                    "sched-point coverage, hook hygiene, and stats-key "
                    "stability. See DESIGN.md §11.")
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint (default: src bench "
                        "tests examples under --root)")
    p.add_argument("--root", default=_REPO_ROOT,
                   help="repository root used for scoping paths "
                        "(default: the tree containing this tool)")
    p.add_argument("--build-dir", default=None,
                   help="build directory with compile_commands.json "
                        "(default: <root>/build); used by the libclang "
                        "backend for per-TU parse arguments")
    p.add_argument("--backend", choices=("auto", "libclang", "lexer"),
                   default="auto",
                   help="token source: clang's tokenizer via libclang, the "
                        "built-in fallback lexer, or auto (libclang when "
                        "available)")
    p.add_argument("--require-libclang", action="store_true",
                   help="fail (exit 2) instead of falling back to the lexer "
                        "when libclang is unavailable; set in CI so the "
                        "authoritative backend can never be silently skipped")
    p.add_argument("--checks", default=None,
                   help="comma-separated check names to run "
                        "(default: all; see --list-checks)")
    p.add_argument("--list-checks", action="store_true",
                   help="list check names with one-line descriptions and exit")
    p.add_argument("--as-path", default=None, metavar="PREFIX",
                   help="scope (and report) each given file as "
                        "PREFIX/<basename>; used by the fixture tests to run "
                        "checks on files outside their normal directories")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also report per-file waived-finding counts")
    return p


def _resolve_checks(arg: Optional[str]):
    if arg is None:
        return list(ALL_CHECKS.values()), None
    mods = []
    for name in (n.strip() for n in arg.split(",") if n.strip()):
        if name not in ALL_CHECKS:
            return None, name
        mods.append(ALL_CHECKS[name])
    return mods, None


def _load_file(path: str, rel: str, backend: str, root: str,
               compile_args) -> SourceFile:
    if backend == "libclang":
        return clang_backend.parse(path, rel, root, compile_args.get(path))
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    return SourceFile(path, rel, text)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_checks:
        for name in check_names():
            print(f"{name:15s} {ALL_CHECKS[name].DESCRIPTION}")
        return 0

    checks, bad = _resolve_checks(args.checks)
    if checks is None:
        print(f"rwle_lint: unknown check '{bad}' "
              f"(known: {', '.join(check_names())})", file=sys.stderr)
        return 2

    root = os.path.realpath(args.root)
    build_dir = args.build_dir or os.path.join(root, "build")

    backend = args.backend
    if args.require_libclang and backend == "lexer":
        print("rwle_lint: --require-libclang conflicts with --backend=lexer",
              file=sys.stderr)
        return 2
    if backend in ("auto", "libclang") or args.require_libclang:
        if clang_backend.available():
            backend = "libclang"
        elif backend == "libclang" or args.require_libclang:
            print(f"rwle_lint: libclang required but unavailable: "
                  f"{clang_backend.load_error()}", file=sys.stderr)
            return 2
        else:
            backend = "lexer"
            print("rwle_lint: libclang not available "
                  f"({clang_backend.load_error()}); using the built-in lexer "
                  "backend", file=sys.stderr)

    compile_args = {}
    if backend == "libclang":
        compile_args = compiledb.compile_args_by_file(build_dir, root)
        if not compile_args:
            print(f"rwle_lint: note: no compile_commands.json under "
                  f"{build_dir}; parsing with default flags", file=sys.stderr)

    try:
        files = compiledb.default_file_set(root, args.paths or None)
    except OSError as e:
        print(f"rwle_lint: {e}", file=sys.stderr)
        return 2
    if not files:
        print("rwle_lint: no source files to lint", file=sys.stderr)
        return 2

    total = 0
    waived_total = 0
    failed = False
    for path in files:
        if args.as_path is not None:
            rel = args.as_path.rstrip("/") + "/" + os.path.basename(path)
        else:
            rel = os.path.relpath(path, root)
            if rel.startswith(".."):
                rel = os.path.basename(path)
        try:
            src = _load_file(path, rel, backend, root, compile_args)
        except (OSError, LexError, clang_backend.ParseError) as e:
            print(f"rwle_lint: failed to read {path}: {e}", file=sys.stderr)
            failed = True
            continue
        diags = []
        for mod in checks:
            diags.extend(mod.run(src))
        kept, waived = apply_waivers(src, diags, KNOWN_CHECK_NAMES)
        for d in kept:
            print(d.render())
        total += len(kept)
        waived_total += len(waived)
        if args.verbose and waived:
            print(f"rwle_lint: {rel}: {len(waived)} finding(s) waived",
                  file=sys.stderr)

    if failed:
        return 2
    summary = (f"rwle_lint: {total} finding(s) in {len(files)} file(s)"
               f" [{backend} backend"
               + (f", {waived_total} waived]" if waived_total else "]"))
    print(summary, file=sys.stderr)
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
