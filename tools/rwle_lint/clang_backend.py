"""libclang backend: produce SourceModel tokens with clang's own tokenizer.

When python-clang + libclang are installed (the CI static-analysis job
installs both), each file is parsed as a translation unit with the exact
arguments recorded in build/compile_commands.json, and the token stream the
checks consume comes from clang_tokenize -- authoritative lexing of raw
strings, digraphs, UCNs and every other corner the fallback lexer
approximates. Headers (which a compile database never lists) parse with the
project's standard flags.

The backend is deliberately token-level, like the fallback: checks must
behave identically under both, and the fixture golden tests pin that
behavior. Parsing still goes through the full clang frontend, so hard
parse errors (fatal diagnostics) are reported rather than silently linted
around.
"""

from __future__ import annotations

import glob
import os
from typing import List, Optional

from rwle_lint.lexer import Token
from rwle_lint.source import SourceFile

_cindex = None
_load_error: Optional[str] = None


def _find_libclang() -> Optional[str]:
    patterns = (
        "/usr/lib/llvm-*/lib/libclang-*.so*",
        "/usr/lib/llvm-*/lib/libclang.so*",
        "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
        "/usr/lib/x86_64-linux-gnu/libclang.so*",
        "/usr/local/lib/libclang*.so*",
        "/opt/homebrew/opt/llvm/lib/libclang.dylib",
        "/usr/local/opt/llvm/lib/libclang.dylib",
    )
    candidates: List[str] = []
    for p in patterns:
        candidates.extend(glob.glob(p))
    # libclang-cpp is the C++ API, not the stable C API cindex binds to.
    candidates = [c for c in candidates if "libclang-cpp" not in c]
    return sorted(candidates, reverse=True)[0] if candidates else None


def available() -> bool:
    return _load() is not None


def load_error() -> str:
    _load()
    return _load_error or ""


def _load():
    global _cindex, _load_error
    if _cindex is not None or _load_error is not None:
        return _cindex
    try:
        from clang import cindex  # type: ignore
    except ImportError as e:
        _load_error = f"python clang bindings not importable ({e})"
        return None
    try:
        cindex.Index.create()
    except Exception:
        lib = _find_libclang()
        if lib is None:
            _load_error = "clang.cindex importable but no libclang shared library found"
            return None
        try:
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
        except Exception as e:  # pragma: no cover - depends on host LLVM
            _load_error = f"failed to load libclang from {lib}: {e}"
            return None
    _cindex = cindex
    return _cindex


_KIND_MAP = {
    "PUNCTUATION": "punct",
    "KEYWORD": "keyword",
    "IDENTIFIER": "identifier",
    "LITERAL": "literal",
    "COMMENT": "comment",
}

# Flags used for headers and any file absent from the compile database.
DEFAULT_ARGS = ["-x", "c++", "-std=c++20"]


class ParseError(Exception):
    pass


def parse(path: str, rel: str, root: str, compile_args: Optional[List[str]]) -> SourceFile:
    cindex = _load()
    if cindex is None:
        raise ParseError(load_error())
    index = cindex.Index.create()
    args = list(compile_args) if compile_args else DEFAULT_ARGS + ["-I", root]
    # Keep macro bodies and skipped #if regions visible: the checks are
    # token-level and must see RWLE_SCHED_POINT sites in all configurations.
    opts = cindex.TranslationUnit.PARSE_DETAILED_PREPROCESSING_RECORD
    try:
        tu = index.parse(path, args=args, options=opts)
    except cindex.TranslationUnitLoadError as e:
        raise ParseError(f"libclang failed to parse {rel}: {e}") from e
    fatal = [d for d in tu.diagnostics if d.severity >= cindex.Diagnostic.Fatal]
    if fatal:
        raise ParseError(f"{rel}: {fatal[0].spelling}")

    with open(path, "r", encoding="utf-8") as f:
        text = f.read()

    main_file = cindex.File.from_name(tu, path)
    start = cindex.SourceLocation.from_offset(tu, main_file, 0)
    end = cindex.SourceLocation.from_offset(tu, main_file, len(text.encode("utf-8")))
    extent = cindex.SourceRange.from_locations(start, end)

    tokens: List[Token] = []
    for t in tu.get_tokens(extent=extent):
        if t.location.file is None or t.location.file.name != main_file.name:
            continue
        kind = _KIND_MAP.get(t.kind.name)
        if kind is None:  # pragma: no cover - future libclang token kinds
            kind = "punct"
        tokens.append(Token(kind, t.spelling, t.location.line, t.location.column))
    return SourceFile(path, rel, text, all_tokens=tokens)
