"""C2 -- memory-order discipline.

Every explicit std::memory_order weaker than seq_cst must carry an adjacent
ordering comment: the PR-5 convention ("the ordering argument commented at
each site"), now enforced. A weakened atomic op whose justification lives
only in a reviewer's head is exactly how the next refactor reorders a
publication store past the data it publishes.

The comment must actually argue about ordering (match the vocabulary below);
"speed this up" does not count. seq_cst needs no comment -- it is the safe
default -- and memory orders in *test* code are exempt (tests exercise
orderings deliberately; the invariant protects production paths).
"""

from __future__ import annotations

import re
from typing import List

from rwle_lint.checks._util import has_adjacent_comment, in_dirs
from rwle_lint.diagnostics import Diagnostic
from rwle_lint.source import SourceFile

NAME = "memory-order"
DESCRIPTION = ("non-seq_cst std::memory_order arguments must have an adjacent "
               "ordering comment")

SCOPE_DIRS = ("src/", "bench/", "examples/")

_WEAK_ORDERS = {
    "memory_order_relaxed",
    "memory_order_acquire",
    "memory_order_release",
    "memory_order_acq_rel",
    "memory_order_consume",
}
_WEAK_SCOPED = {"relaxed", "acquire", "release", "acq_rel", "consume"}

# What counts as "talking about ordering". Generous on purpose: the check
# enforces that an argument exists where the reader will look, not that it
# uses one blessed word.
ORDERING_VOCAB = re.compile(
    r"(?i)(order|fence|barrier|synchroni[sz]|acquire|release|relaxed|"
    r"acq_rel|seq_cst|happens[- ]before|visib|publish|reorder|coheren|"
    r"monotonic|rac[ey]|atomi[ct])")


def run(src: SourceFile) -> List[Diagnostic]:
    if not in_dirs(src, SCOPE_DIRS):
        return []
    diags: List[Diagnostic] = []
    toks = src.tokens
    for i, t in enumerate(toks):
        if t.kind != "identifier":
            continue
        weak = None
        if t.spelling in _WEAK_ORDERS:
            weak = t.spelling
        elif (t.spelling == "memory_order" and i + 2 < len(toks)
              and toks[i + 1].spelling == "::"
              and toks[i + 2].spelling in _WEAK_SCOPED):
            weak = f"memory_order::{toks[i + 2].spelling}"
        if weak is None:
            continue
        if has_adjacent_comment(src, i, ORDERING_VOCAB):
            continue
        diags.append(Diagnostic(
            NAME, src.rel, t.line, t.col,
            f"'{weak}' without an adjacent ordering comment; state why this "
            f"weakening is safe (what synchronizes / what may reorder) next "
            f"to the access, or use seq_cst"))
    return diags
