"""C5 -- stats-key stability.

The named snapshot structs in src/stats/ (CommitBreakdown, AbortBreakdown,
...) are the single authoritative description of the serialized result
schema: their field names become JSON keys, and bench_compare.py's
regression gate plus every committed baseline depend on those keys
byte-for-byte. This check pins them twice over:

  - every field of every struct in src/stats/ must be snake_case (the JSON
    key convention), as must every string literal returned by the *Key()
    stable-identifier functions;
  - the structs listed in the committed manifest
    (tools/rwle_lint/schema/stats_keys.json) must declare exactly the
    manifest's fields, in order. Renaming or reordering a field now fails
    lint until the manifest is updated in the same change -- making schema
    drift a reviewed decision instead of an accident discovered by a red
    bench-smoke job.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from rwle_lint.checks._util import SNAKE_CASE_RE, in_dirs
from rwle_lint.diagnostics import Diagnostic
from rwle_lint.source import SourceFile

NAME = "stats-keys"
DESCRIPTION = ("src/stats/ snapshot struct fields must be snake_case and "
               "match the committed schema manifest")

SCOPE_DIRS = ("src/stats/",)

_SCHEMA_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "schema", "stats_keys.json")

# Declaration keywords that start non-field member statements.
_SKIP_STARTERS = {"using", "typedef", "friend", "template", "public",
                  "private", "protected", "static_assert", "enum", "class",
                  "struct", "operator"}


def _load_manifest(override: Optional[str] = None) -> Dict[str, List[str]]:
    path = override or _SCHEMA_PATH
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def _parse_structs(src: SourceFile) -> List[Tuple[str, int, List[Tuple[str, int, int]]]]:
    """All struct definitions: (name, line, [(field, line, col), ...]).

    Token-level parse: fields are the depth-1 statements of the struct body
    that are not functions, nested types, access labels, or static members.
    A field's name is the identifier directly before '=', ';', '[' or '{'
    (brace-or-equals initializers and arrays included).
    """
    out = []
    toks = src.tokens
    i = 0
    while i < len(toks):
        t = toks[i]
        if not (t.kind == "keyword" and t.spelling == "struct"):
            i += 1
            continue
        name_idx = i + 1
        # struct alignas(...) Name { ... };
        if name_idx < len(toks) and toks[name_idx].spelling == "alignas" \
                and name_idx + 1 < len(toks) and toks[name_idx + 1].spelling == "(":
            name_idx = src.match_forward(name_idx + 1) + 1
        if name_idx >= len(toks) or toks[name_idx].kind != "identifier":
            i += 1
            continue
        name = toks[name_idx].spelling
        # Find the '{' of the definition (skip base clause); bail at ';'
        # (forward declaration) or '(' (function returning struct-ish).
        j = name_idx + 1
        while j < len(toks) and toks[j].spelling not in ("{", ";", "("):
            j += 1
        if j >= len(toks) or toks[j].spelling != "{":
            i += 1
            continue
        body_open, body_close = j, src.match_forward(j)
        fields: List[Tuple[str, int, int]] = []
        k = body_open + 1
        while k < body_close:
            # One member statement: from k to its ';' or body '}' at depth 0.
            stmt_start = k
            depth = 0
            has_paren = False
            end = k
            while end < body_close:
                s = toks[end].spelling
                if s in ("(",):
                    has_paren = has_paren or depth == 0
                if s in "([{":
                    depth += 1
                elif s in ")]}":
                    depth -= 1
                    # A '}' closing a function body / nested type ends the
                    # statement even without ';' (the ';' is optional there
                    # only for functions; nested structs keep theirs).
                    if depth == 0 and s == "}":
                        if end + 1 < body_close and toks[end + 1].spelling == ";":
                            end += 1
                        break
                elif s == ";" and depth == 0:
                    break
                elif s == ":" and depth == 0 and end == stmt_start + 1 \
                        and toks[stmt_start].spelling in ("public", "private", "protected"):
                    break
                end += 1
            stmt = toks[stmt_start:end]
            k = end + 1
            if not stmt:
                continue
            first = stmt[0].spelling
            if first in _SKIP_STARTERS or first == "static":
                continue
            if has_paren:
                continue  # member function (fields of function-pointer type
                # would need a waiver; none exist in src/stats)
            # Identifier directly before the initializer/terminator.
            field = None
            for idx in range(len(stmt) - 1, -1, -1):
                if stmt[idx].kind == "identifier":
                    nxt = stmt[idx + 1].spelling if idx + 1 < len(stmt) else ";"
                    if nxt in ("=", "[", "{", ";") or idx == len(stmt) - 1:
                        field = stmt[idx]
                        break
            if field is not None:
                fields.append((field.spelling, field.line, field.col))
        out.append((name, toks[name_idx].line, fields))
        i = body_close + 1
    return out


def _key_function_literals(src: SourceFile) -> List[Tuple[str, int, int]]:
    """String literals inside functions whose name ends in 'Key'."""
    out = []
    toks = src.tokens
    for i, t in enumerate(toks):
        if t.kind != "identifier" or not t.spelling.endswith("Key"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].spelling != "(":
            continue
        close = src.match_forward(i + 1)
        # Definition if a '{' follows within a few tokens (const, noexcept).
        j = close + 1
        while j < len(toks) and j <= close + 4 and toks[j].spelling not in ("{", ";"):
            j += 1
        if j >= len(toks) or toks[j].spelling != "{":
            continue
        body_close = src.match_forward(j)
        for k in range(j + 1, body_close):
            tk = toks[k]
            if tk.kind == "literal" and tk.spelling.startswith('"'):
                out.append((tk.spelling.strip('"'), tk.line, tk.col))
    return out


def run(src: SourceFile, manifest_path: Optional[str] = None) -> List[Diagnostic]:
    if not in_dirs(src, SCOPE_DIRS):
        return []
    diags: List[Diagnostic] = []
    manifest = _load_manifest(manifest_path)
    structs = _parse_structs(src)

    for name, line, fields in structs:
        for fname, fline, fcol in fields:
            if not SNAKE_CASE_RE.match(fname):
                diags.append(Diagnostic(
                    NAME, src.rel, fline, fcol,
                    f"field '{name}::{fname}' is not snake_case; snapshot "
                    f"fields become JSON keys and must follow the key "
                    f"convention"))
        if name in manifest:
            expected = manifest[name]
            actual = [f[0] for f in fields]
            if actual != expected:
                diags.append(Diagnostic(
                    NAME, src.rel, line, 1,
                    f"struct '{name}' fields {actual} do not match the "
                    f"committed schema manifest {expected}; committed "
                    f"baselines and bench_compare.py key on these -- if the "
                    f"schema change is intended, update "
                    f"tools/rwle_lint/schema/stats_keys.json in the same "
                    f"change"))

    found = {name for name, _, _ in structs}
    for name in manifest:
        if name not in found and src.rel.endswith("stats.h"):
            diags.append(Diagnostic(
                NAME, src.rel, 1, 1,
                f"manifest struct '{name}' not found in {src.rel}; the "
                f"serialized schema lost its authoritative description"))

    for literal, line, col in _key_function_literals(src):
        if not SNAKE_CASE_RE.match(literal):
            diags.append(Diagnostic(
                NAME, src.rel, line, col,
                f"stable key \"{literal}\" is not snake_case; *Key() "
                f"identifiers feed serialized results and comparison "
                f"baselines"))
    return diags
