"""Helpers shared by the check modules."""

from __future__ import annotations

import re
from typing import Optional, Pattern

from rwle_lint.source import SourceFile


def in_dirs(src: SourceFile, dirs) -> bool:
    rel = src.rel.replace("\\", "/")
    return any(rel.startswith(d) for d in dirs)


def has_adjacent_comment(src: SourceFile, token_index: int,
                         vocab: Optional[Pattern] = None) -> bool:
    """True if the statement containing tokens[token_index] carries a comment.

    "Adjacent" means: a comment on any line the statement spans (trailing or
    interleaved in a multi-line call), or a contiguous own-line comment block
    ending directly above the statement's first line. When `vocab` is given,
    at least one such comment must match it -- this is how the memory-order
    check insists the comment actually argues about ordering rather than
    saying something unrelated.
    """
    tok = src.tokens[token_index]
    stmt_line = src.tokens[src.statement_start(token_index)].line
    candidates = []
    for line in range(stmt_line, tok.line + 1):
        candidates.extend(src.comments_on(line))
    candidates.extend(src.comment_block_above(stmt_line))
    # Waiver directives are a separate mechanism (diagnostics.apply_waivers);
    # they must not double as justification comments, or
    # `disable(memory-order)` would satisfy the ordering-vocab rule by
    # accident of its spelling.
    candidates = [c for c in candidates if "rwle-lint:" not in c.text]
    if vocab is None:
        return bool(candidates)
    return any(vocab.search(c.text) for c in candidates)


def is_call(src: SourceFile, index: int) -> bool:
    """tokens[index] is an identifier directly invoked as name(...)."""
    toks = src.tokens
    return index + 1 < len(toks) and toks[index + 1].spelling == "("


SNAKE_CASE_RE = re.compile(r"^[a-z][a-z0-9_]*$")
