"""C1 -- fabric-access discipline.

Transaction-body code must route every shared-memory access through the
simulated HTM fabric (TxVar / TxContext / HtmRuntime cell ops): the fabric
is what tracks read/write sets, dooms conflicting transactions, and charges
modeled cost. An access that bypasses it is invisible to conflict
detection, to txsan, and to the cost model -- the speculative equivalent of
a data race.

Concretely, in the fabric-disciplined directories:

  (a) LoadDirect / StoreDirect calls -- the sanctioned fabric bypass for
      single-threaded setup and post-run verification -- must carry an
      adjacent comment justifying why no transaction can observe the
      access (or an explicit waiver). An unjustified Direct access is the
      most common way workload bugs sneak past txsan.

  (b) In src/workloads/ (pure transaction-body code), raw std::atomic
      members and .load()/.store() accesses are flagged outright: workload
      shared state must be TxVar so it participates in conflict detection.
      The fabric layers themselves (src/htm/, src/rwle/) implement the
      coherence protocol and legitimately use raw atomics there.

  (c) `volatile` is flagged everywhere in scope: it neither orders nor
      tracks accesses and always indicates shared state held outside the
      fabric.
"""

from __future__ import annotations

from typing import List

from rwle_lint.checks._util import has_adjacent_comment, in_dirs, is_call
from rwle_lint.diagnostics import Diagnostic
from rwle_lint.source import SourceFile

NAME = "fabric-access"
DESCRIPTION = ("transaction-body code must route shared accesses through the "
               "fabric (TxVar/TxContext); Direct bypasses need justification")

SCOPE_DIRS = ("src/rwle/", "src/htm/", "src/workloads/")
WORKLOAD_DIRS = ("src/workloads/",)

_DIRECT_CALLS = {"LoadDirect", "StoreDirect"}
_RAW_ATOMIC_CALLS = {"load", "store", "exchange", "fetch_add", "fetch_sub",
                     "fetch_or", "fetch_and", "fetch_xor",
                     "compare_exchange_weak", "compare_exchange_strong"}


def run(src: SourceFile) -> List[Diagnostic]:
    if not in_dirs(src, SCOPE_DIRS):
        return []
    diags: List[Diagnostic] = []
    toks = src.tokens
    in_workloads = in_dirs(src, WORKLOAD_DIRS)

    for i, t in enumerate(toks):
        # (c) volatile anywhere in fabric-disciplined code.
        if t.kind == "keyword" and t.spelling == "volatile":
            diags.append(Diagnostic(
                NAME, src.rel, t.line, t.col,
                "'volatile' shared state bypasses the fabric: it is invisible "
                "to conflict detection and the cost model; use TxVar (or a "
                "justified atomic in the fabric layers)"))
            continue
        if t.kind != "identifier":
            continue
        # (a) Direct fabric bypass needs an adjacent justification comment.
        if t.spelling in _DIRECT_CALLS and is_call(src, i):
            if not has_adjacent_comment(src, i):
                diags.append(Diagnostic(
                    NAME, src.rel, t.line, t.col,
                    f"'{t.spelling}' bypasses the fabric with no adjacent "
                    f"justification; state why no transaction can observe "
                    f"this access (setup / verification / quiescence), or "
                    f"use the coherent Load/Store"))
            continue
        if not in_workloads:
            continue
        # (b) Raw atomics in workload (transaction-body) code.
        if (t.spelling == "atomic" and i >= 2
                and toks[i - 1].spelling == "::" and toks[i - 2].spelling == "std"):
            diags.append(Diagnostic(
                NAME, src.rel, t.line, t.col,
                "raw std::atomic in transaction-body code: workload shared "
                "state must be TxVar so the fabric tracks it for conflict "
                "detection and modeled cost"))
            continue
        if (t.spelling in _RAW_ATOMIC_CALLS and is_call(src, i) and i >= 1
                and toks[i - 1].spelling in (".", "->")):
            diags.append(Diagnostic(
                NAME, src.rel, t.line, t.col,
                f"raw atomic '.{t.spelling}()' in transaction-body code: "
                f"route this access through TxVar/TxContext so the fabric "
                f"sees it"))
    return diags
