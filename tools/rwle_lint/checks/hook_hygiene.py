"""C4 -- hook hygiene.

Production code talks to the dynamic analyzer (txsan) and the cooperative
scheduler only through the null-hook headers (analysis_hooks.h,
sched_hooks.h): a relaxed function-pointer load in instrumented builds,
nothing at all in production builds. A direct call into src/analysis/ or
src/sched/ from fabric or lock code would (1) link the instrumentation into
production binaries and (2) bypass the compiled-out guarantee the perf
gates rely on.

Flagged, outside the analyzer/scheduler themselves and the hook headers:
  - #include of a src/analysis/ or src/sched/ header
  - qualified references into rwle::analysis::, rwle::txsan::, rwle::sched::
    (the hook namespaces analysis_hooks:: / sched_hooks:: are the sanctioned
    surface and are allowed)

The driver layer is exempt by allowlist: it *owns* scheduler rounds and
analyzer bootstrap by design (rwle_explore, `rwle_bench --sched`), and the
bench/ tree is not production code.
"""

from __future__ import annotations

from typing import List

from rwle_lint.diagnostics import Diagnostic
from rwle_lint.source import SourceFile

NAME = "hook-hygiene"
DESCRIPTION = ("no direct txsan/scheduler dependencies outside "
               "analysis_hooks.h/sched_hooks.h (production stays hook-free)")

# The check guards the production library: src/ only. bench/ and tests/ are
# drivers and harnesses by definition.
SCOPE_PREFIX = "src/"

# Files that legitimately live on the other side of the hooks.
EXEMPT = (
    "src/analysis/",           # the analyzer itself
    "src/sched/",              # the scheduler itself
    "src/common/analysis_hooks.h",
    "src/common/sched_hooks.h",
    # Driver layer: sets up scheduler rounds for `rwle_bench --sched`
    # (PR 4's documented controlled-stress mode); inert unless a scheduled
    # run is requested, and not part of the fabric/lock hot paths.
    "src/harness/bench_harness.cc",
)

_FORBIDDEN_NAMESPACES = {"analysis", "txsan", "sched"}
_FORBIDDEN_INCLUDE_PREFIXES = ('"src/analysis/', '"src/sched/')


def run(src: SourceFile) -> List[Diagnostic]:
    rel = src.rel.replace("\\", "/")
    if not rel.startswith(SCOPE_PREFIX):
        return []
    if any(rel.startswith(e) for e in EXEMPT):
        return []
    diags: List[Diagnostic] = []
    toks = src.tokens
    for i, t in enumerate(toks):
        if t.kind == "literal" and any(
                t.spelling.startswith(p) for p in _FORBIDDEN_INCLUDE_PREFIXES):
            diags.append(Diagnostic(
                NAME, src.rel, t.line, t.col,
                f"direct include of {t.spelling} outside the driver layer; "
                f"production code must observe the analyzer/scheduler only "
                f"through analysis_hooks.h / sched_hooks.h"))
            continue
        if (t.kind == "identifier" and t.spelling in _FORBIDDEN_NAMESPACES
                and i + 1 < len(toks) and toks[i + 1].spelling == "::"):
            diags.append(Diagnostic(
                NAME, src.rel, t.line, t.col,
                f"direct call into '{t.spelling}::' from production code; "
                f"go through the null-hook surface (analysis_hooks.h / "
                f"sched_hooks.h) so non-instrumented builds stay hook-free"))
    return diags
