"""Check registry: name -> module implementing NAME, DESCRIPTION, run(src)."""

from __future__ import annotations

from typing import Dict, List

from rwle_lint.checks import (
    fabric_access,
    hook_hygiene,
    memory_order,
    sched_points,
    stats_keys,
)

_MODULES = (fabric_access, memory_order, sched_points, hook_hygiene, stats_keys)

ALL_CHECKS: Dict[str, object] = {m.NAME: m for m in _MODULES}

# 'waiver' is not runnable -- it is produced by the waiver engine itself --
# but it is a known name so `--checks` and disable() lists can refer to it
# in error messages.
KNOWN_CHECK_NAMES = set(ALL_CHECKS) | {"waiver"}


def check_names() -> List[str]:
    return sorted(ALL_CHECKS)
