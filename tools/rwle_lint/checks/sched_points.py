"""C3 -- sched-point coverage.

Every spin/retry loop in the lock and fabric layers must contain a
scheduling point, or `rwle_explore` cannot interleave other threads while
the loop waits: under the cooperative scheduler the loop becomes a
livelock, and -- worse -- the schedule space the explorer and txsan's
oracle cover silently excludes the loop's interleavings. New blocking
paths (BRAVO fallback revocation, chopped-transaction piece chaining,
lazy-subscription retries) stay explorable by construction only if this is
enforced mechanically.

A loop is a *spin/retry loop* when it is unbounded (`for (;;)`,
`while (true)`, `do ... while (true)`) or its condition polls shared state
(a call to one of the polling accessors below). It is covered when its body
or condition reaches a scheduling point: a literal RWLE_SCHED_POINT /
NotifySchedPoint, a SpinBackoff iteration (kSpinWait), or a fabric/lock
primitive that carries a point internally (CellLoad and friends, the
lock-word and epoch-clock entry points -- see the carrier table).
"""

from __future__ import annotations

from typing import List

from rwle_lint.checks._util import in_dirs, is_call
from rwle_lint.diagnostics import Diagnostic
from rwle_lint.source import SourceFile

NAME = "sched-point"
DESCRIPTION = ("spin/retry loops in lock/fabric code must reach an "
               "RWLE_SCHED_POINT (directly or via a carrier primitive)")

SCOPE_DIRS = ("src/locks/", "src/rwle/", "src/htm/")

# Calls that make a loop condition "polling shared state". Project
# convention: capitalized Load/State are fabric- or lock-word accessors;
# lowercase .load() is a raw std::atomic access (which the fabric layers use
# only with an ordering argument, see the memory-order check).
POLL_ACCESSORS = {
    "Load",          # TxVar / LockWord loads (fabric-routed)
    "load",          # raw atomic polling, e.g. a stop flag or status word
    "State",         # LockWord::State
    "Phase",         # TxContext phase polls
}

# Identifiers that carry a scheduling point, with where the point lives:
#   RWLE_SCHED_POINT / NotifySchedPoint  -- the point itself
#   SpinBackoff                          -- kSpinWait (first thing it does)
#   CellLoad / CellStore / CellCas       -- kFabricLoad/Store/Cas in
#                                           HtmRuntime entry
#   Load / Store                         -- TxVar & LockWord route through the
#                                           Cell* entry points above
#   Acquire / Release                    -- LockWord::Acquire/Release
#                                           (kLockAcquire/kLockRelease)
#   Enter / Exit / AwaitQuiescence /     -- epoch-clock points (kReaderEnter/
#     WaitForReaders                        Exit/kQuiescence)
#   WaitWhileState                       -- spins with SpinBackoff internally
#   MaybePreempt                         -- kPreemptYield
#   TxBegin / TxCommit / TxSuspend /     -- kTxBegin/kTxCommit/kTxSuspend/
#     TxResume / TxCancel / FinishAbort     kTxResume/kTxAbort in HtmRuntime
CARRIERS = {
    "RWLE_SCHED_POINT", "NotifySchedPoint",
    "SpinBackoff",
    "CellLoad", "CellStore", "CellCas",
    "Load", "Store",
    "Acquire", "Release",
    "Enter", "Exit", "AwaitQuiescence", "WaitForReaders",
    "WaitWhileState",
    "MaybePreempt",
    "TxBegin", "TxCommit", "TxSuspend", "TxResume", "TxCancel", "FinishAbort",
}


def _is_unbounded(src: SourceFile, loop) -> bool:
    if loop.keyword == "for":
        cond = src.for_condition(loop)
        # None = range-for (finite container iteration, not a spin loop).
        return cond is not None and len(cond) == 0
    cond = src.condition_tokens(loop)
    return len(cond) == 1 and cond[0].spelling in ("true", "1")


def _polls_shared_state(src: SourceFile, loop) -> bool:
    cond = src.condition_tokens(loop)
    for i, t in enumerate(cond):
        if (t.kind == "identifier" and t.spelling in POLL_ACCESSORS
                and i + 1 < len(cond) and cond[i + 1].spelling == "("):
            return True
    return False


def _has_carrier(src: SourceFile, loop) -> bool:
    toks = src.body_tokens(loop) + src.condition_tokens(loop)
    for i, t in enumerate(toks):
        if t.kind != "identifier" or t.spelling not in CARRIERS:
            continue
        if t.spelling in ("RWLE_SCHED_POINT", "NotifySchedPoint"):
            return True
        if i + 1 < len(toks) and toks[i + 1].spelling == "(":
            return True
    return False


def run(src: SourceFile) -> List[Diagnostic]:
    if not in_dirs(src, SCOPE_DIRS):
        return []
    diags: List[Diagnostic] = []
    for loop in src.loops():
        if not (_is_unbounded(src, loop) or _polls_shared_state(src, loop)):
            continue
        if _has_carrier(src, loop):
            continue
        kw = src.tokens[loop.kw_index]
        diags.append(Diagnostic(
            NAME, src.rel, kw.line, kw.col,
            "spin/retry loop with no scheduling point: add RWLE_SCHED_POINT "
            "or SpinBackoff (or route the wait through a fabric/lock "
            "primitive that carries one), otherwise rwle_explore cannot "
            "interleave threads here and the schedule space silently "
            "excludes this wait"))
    return diags
