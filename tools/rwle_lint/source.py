"""SourceModel: the per-file facts rwle_lint checks consume.

A SourceFile wraps one translation unit (or header) as a token stream plus
comment records and navigation helpers (matching delimiters, statement
starts, loop extraction). Both backends produce the same model: the
pure-Python lexer (lexer.py) and libclang's tokenizer (clang_backend.py)
feed the identical Token contract in, so every check is backend-agnostic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence

from rwle_lint.lexer import Token, tokenize

_OPEN = {"(": ")", "[": "]", "{": "}"}


@dataclasses.dataclass(frozen=True)
class Comment:
    text: str        # comment text including // or /* */ markers
    line: int        # first line
    end_line: int    # last line (block comments span several)
    col: int
    own_line: bool   # no code token starts on `line` before this comment


@dataclasses.dataclass(frozen=True)
class Loop:
    """One for/while/do loop: token indices into SourceFile.tokens."""

    keyword: str          # 'for' | 'while' | 'do'
    kw_index: int         # index of the loop keyword token
    cond_start: int       # first token of the condition (inclusive), -1 if none
    cond_end: int         # one past the last condition token, -1 if none
    body_start: int       # first token of the body (inclusive)
    body_end: int         # one past the last body token


class SourceFile:
    def __init__(self, path: str, rel: str, text: str,
                 all_tokens: Optional[Sequence[Token]] = None):
        self.path = path
        self.rel = rel          # repo-relative path used for check scoping
        self.text = text
        self.lines = text.splitlines()
        if all_tokens is None:
            all_tokens = tokenize(text)
        self.all_tokens: List[Token] = list(all_tokens)
        self.tokens: List[Token] = [t for t in self.all_tokens if t.kind != "comment"]
        self.comments: List[Comment] = self._build_comments()
        # Line -> comments starting on it; and the set of lines any comment
        # overlaps (block comments count on every line they span).
        self._comments_by_line: Dict[int, List[Comment]] = {}
        self._comment_cover: Dict[int, List[Comment]] = {}
        for c in self.comments:
            self._comments_by_line.setdefault(c.line, []).append(c)
            for ln in range(c.line, c.end_line + 1):
                self._comment_cover.setdefault(ln, []).append(c)
        self._code_lines = {t.line for t in self.tokens}

    # ---------------------------------------------------------------- comments

    def _build_comments(self) -> List[Comment]:
        out: List[Comment] = []
        first_code_col: Dict[int, int] = {}
        for t in self.tokens:
            first_code_col.setdefault(t.line, t.col)
        for t in self.all_tokens:
            if t.kind != "comment":
                continue
            end_line = t.line + t.spelling.count("\n")
            code_col = first_code_col.get(t.line)
            own = code_col is None or code_col > t.col
            out.append(Comment(t.spelling, t.line, end_line, t.col, own))
        return out

    def comments_on(self, line: int) -> List[Comment]:
        """Comments overlapping `line` (block comments on all spanned lines)."""
        return self._comment_cover.get(line, [])

    def comment_block_above(self, line: int) -> List[Comment]:
        """The contiguous run of own-line comments ending directly above `line`.

        Blank lines break contiguity: a comment separated from the statement
        by an empty line documents something else.
        """
        block: List[Comment] = []
        ln = line - 1
        while ln >= 1:
            cs = [c for c in self._comments_by_line.get(ln, []) if c.own_line]
            covering = self._comment_cover.get(ln, [])
            if cs:
                block = cs + block
                ln = min(c.line for c in cs) - 1
            elif covering and all(c.own_line for c in covering):
                # interior line of a multi-line block comment
                ln = min(c.line for c in covering) - 1
                block = [c for c in covering if c not in block] + block
            else:
                break
        return block

    def has_code_on(self, line: int) -> bool:
        return line in self._code_lines

    # ------------------------------------------------------------- navigation

    def match_forward(self, index: int) -> int:
        """Index of the token closing the bracket opened at `index`."""
        opener = self.tokens[index].spelling
        closer = _OPEN[opener]
        depth = 0
        for j in range(index, len(self.tokens)):
            s = self.tokens[j].spelling
            if s == opener:
                depth += 1
            elif s == closer:
                depth -= 1
                if depth == 0:
                    return j
        return len(self.tokens) - 1

    def statement_start(self, index: int) -> int:
        """Index of the first token of the statement containing tokens[index].

        Walks backwards to the nearest ';', '{', '}', or preprocessor-ish
        boundary at the same nesting depth; the statement starts just after
        it. Bracket nesting is respected so multi-line call argument lists
        stay one statement.
        """
        depth = 0
        j = index
        while j > 0:
            s = self.tokens[j - 1].spelling
            if s in (")", "]"):
                depth += 1
            elif s in ("(", "["):
                if depth > 0:
                    depth -= 1
                # An unmatched opener belongs to an enclosing call or loop
                # header; the statement keeps going to its left.
            elif depth == 0 and s in (";", "{", "}"):
                break
            j -= 1
        return j

    # ------------------------------------------------------------------ loops

    def loops(self) -> Iterator[Loop]:
        toks = self.tokens
        for i, t in enumerate(toks):
            if t.kind != "keyword" or t.spelling not in ("for", "while", "do"):
                continue
            if t.spelling == "do":
                body_start, body_end = self._body_span(i + 1)
                # `while (cond)` after the body
                j = body_end
                if j < len(toks) and toks[j].spelling == "while" and \
                        j + 1 < len(toks) and toks[j + 1].spelling == "(":
                    close = self.match_forward(j + 1)
                    yield Loop("do", i, j + 2, close, body_start, body_end)
                continue
            if i + 1 >= len(toks) or toks[i + 1].spelling != "(":
                continue
            close = self.match_forward(i + 1)
            # Skip `while` that closes a do-loop: it is yielded above.
            if t.spelling == "while" and i > 0 and toks[i - 1].spelling == "}":
                # Heuristic: a do-loop's while is preceded by its body brace
                # and followed by ';'.
                if close + 1 < len(toks) and toks[close + 1].spelling == ";":
                    continue
            body_start, body_end = self._body_span(close + 1)
            yield Loop(t.spelling, i, i + 2, close, body_start, body_end)

    def _body_span(self, start: int):
        toks = self.tokens
        if start >= len(toks):
            return start, start
        if toks[start].spelling == "{":
            end = self.match_forward(start)
            return start, end + 1
        # Single-statement body: up to the terminating ';' at depth 0.
        depth = 0
        j = start
        while j < len(toks):
            s = toks[j].spelling
            if s in "([{":
                depth += 1
            elif s in ")]}":
                depth -= 1
            elif s == ";" and depth == 0:
                return start, j + 1
            j += 1
        return start, j

    def for_condition(self, loop: Loop) -> Optional[List[Token]]:
        """The condition clause of a `for` loop (between the two ';').

        Returns None for range-for loops (no ';' inside the parens) -- they
        iterate a finite container and have no condition to classify.
        """
        toks = self.tokens
        parts: List[List[Token]] = [[]]
        depth = 0
        for j in range(loop.cond_start, loop.cond_end):
            s = toks[j].spelling
            if s in "([{":
                depth += 1
            elif s in ")]}":
                depth -= 1
            if s == ";" and depth == 0:
                parts.append([])
            else:
                parts[-1].append(toks[j])
        return parts[1] if len(parts) >= 2 else None

    def condition_tokens(self, loop: Loop) -> List[Token]:
        if loop.cond_start < 0:
            return []
        if loop.keyword == "for":
            return self.for_condition(loop) or []
        return self.tokens[loop.cond_start:loop.cond_end]

    def body_tokens(self, loop: Loop) -> List[Token]:
        return self.tokens[loop.body_start:loop.body_end]
