"""rwle_lint: libclang-based invariant checker for the RW-LE codebase.

Enforces five project invariants the compiler cannot see (DESIGN.md §11):
fabric-access discipline, memory-order comment discipline, sched-point
coverage of spin loops, analyzer/scheduler hook hygiene, and stats-key
schema stability. Entry point: tools/rwle_lint.py.
"""

__all__ = ["cli"]
