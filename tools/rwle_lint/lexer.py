"""A small C++ lexer producing the token stream rwle_lint's checks consume.

This is the fallback backend: when libclang is available the same Token
records are produced by clang's own tokenizer (clang_backend.py), which is
authoritative. The two backends must agree on the Token contract below --
the fixture tests run against this lexer so the checks stay testable on
boxes without LLVM, and CI runs the libclang backend so drift between the
two surfaces there.

Token contract:
  kind     -- one of 'comment', 'identifier', 'keyword', 'literal', 'punct'
  spelling -- exact source text (comments keep their // or /* */ markers)
  line     -- 1-based line of the token's first character
  col      -- 1-based column of the token's first character

The lexer understands line/block comments, string/char literals (including
raw strings and common prefixes/suffixes), numbers, identifiers, and
multi-character punctuation ('::' is one token, matching clang). It does not
expand preprocessor directives: '#', 'include', '"src/foo.h"' simply appear
as ordinary tokens, which is all the checks need.
"""

from __future__ import annotations

import dataclasses
from typing import List

# Keywords the checks care to distinguish from identifiers. Anything not in
# this set lexes as an identifier, which is harmless for our purposes.
_KEYWORDS = frozenset(
    """
    alignas alignof asm auto bool break case catch char class const constexpr
    const_cast continue decltype default delete do double dynamic_cast else
    enum explicit export extern false float for friend goto if inline int long
    mutable namespace new noexcept nullptr operator private protected public
    register reinterpret_cast return short signed sizeof static static_assert
    static_cast struct switch template this thread_local throw true try
    typedef typeid typename union unsigned using virtual void volatile
    wchar_t while
    """.split()
)

_PUNCT_3 = ("<<=", ">>=", "...", "->*")
_PUNCT_2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##",
)


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str
    spelling: str
    line: int
    col: int


class LexError(Exception):
    """Unterminated comment/string -- the file is not valid C++."""


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        start_line, start_col = line, col

        if ch in " \t\r\n\f\v":
            advance(1)
            continue

        # Line continuation outside any token.
        if ch == "\\" and i + 1 < n and text[i + 1] == "\n":
            advance(2)
            continue

        # Comments.
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            if end == -1:
                end = n
            # A trailing backslash continues a line comment onto the next line.
            while end < n and text[end - 1] == "\\":
                nxt = text.find("\n", end + 1)
                end = nxt if nxt != -1 else n
            spelling = text[i:end]
            tokens.append(Token("comment", spelling, start_line, start_col))
            advance(end - i)
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            if end == -1:
                raise LexError(f"unterminated block comment at line {start_line}")
            spelling = text[i : end + 2]
            tokens.append(Token("comment", spelling, start_line, start_col))
            advance(end + 2 - i)
            continue

        # Raw strings: R"delim( ... )delim", with optional encoding prefix.
        raw = _match_raw_string(text, i)
        if raw is not None:
            tokens.append(Token("literal", text[i : i + raw], start_line, start_col))
            advance(raw)
            continue

        # String / char literals (with optional encoding prefix like u8, L).
        lit = _match_quoted(text, i)
        if lit is not None:
            tokens.append(Token("literal", text[i : i + lit], start_line, start_col))
            advance(lit)
            continue

        # Numbers (simplified pp-number: digits, letters, dots, ' separators,
        # exponent signs). Matches clang's NUMERIC_LITERAL granularity.
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n:
                c = text[j]
                if c.isalnum() or c in "._'":
                    j += 1
                elif c in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            tokens.append(Token("literal", text[i:j], start_line, start_col))
            advance(j - i)
            continue

        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            spelling = text[i:j]
            kind = "keyword" if spelling in _KEYWORDS else "identifier"
            tokens.append(Token(kind, spelling, start_line, start_col))
            advance(j - i)
            continue

        # Punctuation, longest match first.
        for group in (_PUNCT_3, _PUNCT_2):
            match = next((p for p in group if text.startswith(p, i)), None)
            if match is not None:
                tokens.append(Token("punct", match, start_line, start_col))
                advance(len(match))
                break
        else:
            tokens.append(Token("punct", ch, start_line, start_col))
            advance(1)

    return tokens


def _match_raw_string(text: str, i: int):
    """Length of a raw string literal starting at i, or None."""
    j = i
    n = len(text)
    for prefix in ("u8R", "uR", "UR", "LR", "R"):
        if text.startswith(prefix, j):
            j += len(prefix)
            break
    else:
        return None
    if j >= n or text[j] != '"':
        return None
    j += 1
    delim_end = text.find("(", j)
    if delim_end == -1 or delim_end - j > 16:
        return None
    delim = text[j:delim_end]
    closer = ")" + delim + '"'
    end = text.find(closer, delim_end + 1)
    if end == -1:
        raise LexError("unterminated raw string literal")
    return end + len(closer) - i


def _match_quoted(text: str, i: int):
    """Length of a (possibly prefixed) string or char literal at i, or None."""
    j = i
    n = len(text)
    for prefix in ("u8", "u", "U", "L"):
        if text.startswith(prefix, j) and j + len(prefix) < n and text[j + len(prefix)] in "\"'":
            j += len(prefix)
            break
    if j >= n or text[j] not in "\"'":
        return None
    quote = text[j]
    j += 1
    while j < n:
        if text[j] == "\\":
            j += 2
            continue
        if text[j] == quote:
            # Literal suffix (e.g. "..."sv) lexes as part of the literal,
            # matching clang.
            j += 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            return j - i
        if text[j] == "\n" and quote == "'":
            break
        j += 1
    raise LexError(f"unterminated {quote} literal")
