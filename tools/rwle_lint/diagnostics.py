"""Diagnostics and the waiver engine.

A finding is a Diagnostic (check name, location, message). Before findings
are reported, the waiver engine drops any that a source comment explicitly
waives:

    code();  // rwle-lint: disable(sched-point)
    // rwle-lint: disable-next-line(memory-order, fabric-access)
    flag.store(true, std::memory_order_relaxed);

Waivers name the check(s) they suppress -- a bare `disable` is rejected so
waivers never silently widen. Unknown check names inside a waiver are
themselves findings (check name 'waiver'), which keeps typos from turning
into permanent blind spots.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, Iterable, List, Set, Tuple

from rwle_lint.source import SourceFile

# Matches every rwle-lint control comment; the argument list is validated
# separately so malformed waivers produce a diagnostic instead of silence.
_WAIVER_RE = re.compile(
    r"rwle-lint:\s*(?P<directive>disable-next-line|disable)\s*"
    r"(?:\((?P<args>[^)]*)\))?"
)

_CHECK_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    check: str
    path: str      # path as reported to the user
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: error: [{self.check}] {self.message}"


class WaiverTable:
    """Per-file map of line -> set of waived check names."""

    def __init__(self, src: SourceFile, known_checks: Set[str]):
        self.waived: Dict[int, Set[str]] = {}
        self.errors: List[Diagnostic] = []
        for comment in src.comments:
            for m in _WAIVER_RE.finditer(comment.text):
                directive = m.group("directive")
                args = m.group("args")
                target = comment.end_line + 1 if directive == "disable-next-line" \
                    else comment.line
                if args is None or not args.strip():
                    self.errors.append(Diagnostic(
                        "waiver", src.rel, comment.line, comment.col,
                        f"'{directive}' must name the check(s) it suppresses, "
                        f"e.g. // rwle-lint: {directive}(sched-point)"))
                    continue
                for name in (a.strip() for a in args.split(",")):
                    if name in known_checks:
                        self.waived.setdefault(target, set()).add(name)
                    else:
                        hint = ", ".join(sorted(known_checks))
                        self.errors.append(Diagnostic(
                            "waiver", src.rel, comment.line, comment.col,
                            f"unknown check '{name}' in waiver "
                            f"(known checks: {hint})"))

    def is_waived(self, diag: Diagnostic) -> bool:
        return diag.check in self.waived.get(diag.line, set())


def apply_waivers(src: SourceFile, diags: Iterable[Diagnostic],
                  known_checks: Set[str]) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Returns (surviving diagnostics incl. waiver errors, waived diagnostics)."""
    table = WaiverTable(src, known_checks)
    kept: List[Diagnostic] = []
    waived: List[Diagnostic] = []
    for d in diags:
        (waived if table.is_waived(d) else kept).append(d)
    kept.extend(table.errors)
    kept.sort(key=lambda d: (d.line, d.col, d.check))
    return kept, waived
