"""Compile-database handling and file-set enumeration.

rwle_lint lints the project's own translation units plus the headers they
own. The TU list comes from build/compile_commands.json (the same database
clang-tidy uses); headers are enumerated from the source tree because a
compile database by construction never lists them. Third-party code lives
under the build directory and is excluded by taking only files under the
repository root.
"""

from __future__ import annotations

import json
import os
import shlex
from typing import Dict, List, Optional

# Directories whose .h/.cc files are first-party lintable sources.
FIRST_PARTY_DIRS = ("src", "bench", "tests", "examples")

_SOURCE_EXTS = (".h", ".hpp", ".cc", ".cpp")


def load_compile_commands(build_dir: str) -> Optional[List[dict]]:
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def compile_args_by_file(build_dir: str, root: str) -> Dict[str, List[str]]:
    """Map of absolute source path -> compiler args (for the libclang backend).

    The compiler executable and the -c/-o pair are stripped; what remains
    (-I, -D, -std, warnings) is what libclang needs to parse the TU the way
    the build does.
    """
    db = load_compile_commands(build_dir)
    if db is None:
        return {}
    out: Dict[str, List[str]] = {}
    for entry in db:
        file_path = entry["file"]
        if not os.path.isabs(file_path):
            file_path = os.path.join(entry["directory"], file_path)
        file_path = os.path.realpath(file_path)
        if not file_path.startswith(os.path.realpath(root) + os.sep):
            continue
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry["command"])
        args: List[str] = []
        skip_next = False
        for a in argv[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", "-o", "-MF", "-MT", "-MQ"):
                skip_next = a != "-c"
                continue
            if a == file_path or a == entry["file"]:
                continue
            args.append(a)
        out[file_path] = args
    return out


def default_file_set(root: str, paths: Optional[List[str]] = None) -> List[str]:
    """All first-party source files (absolute paths), sorted.

    `paths` restricts the walk to the given files/directories (absolute or
    root-relative); the default is the first-party directory list.
    """
    roots = paths if paths else [os.path.join(root, d) for d in FIRST_PARTY_DIRS]
    files: List[str] = []
    for p in roots:
        if not os.path.isabs(p):
            p = os.path.join(root, p)
        if os.path.isfile(p):
            files.append(os.path.realpath(p))
            continue
        for dirpath, dirnames, filenames in os.walk(p):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(_SOURCE_EXTS):
                    files.append(os.path.realpath(os.path.join(dirpath, name)))
    return sorted(set(files))
