#!/usr/bin/env python3
"""Validate and summarize rwle_bench Chrome trace files.

Usage:
    tools/trace_summarize.py TRACE.json             # validate + print summary
    tools/trace_summarize.py --validate TRACE.json  # validate only (quiet)
    tools/trace_summarize.py --runs 5 TRACE.json    # summarize first 5 runs

TRACE.json is the file written by `rwle_bench --trace=FILE`: a Chrome
trace_event "JSON Object Format" document (traceEvents + otherData) with
one process per benchmark run (pid = run id + 1) and one thread lane per
modeled worker. Timestamps are microseconds of *modeled* time (1 modeled
cycle = 1 ns; see DESIGN.md, trace subsystem).

Validation checks the structural contract the exporter promises:
  - top level is an object with a traceEvents list and an otherData object
    carrying generator/total_events/dropped_events counters;
  - every event has name/ph/pid/tid, ph is one of M/X/i;
  - "X" (complete span) events carry numeric non-negative ts and dur plus
    an args object;
  - "i" (instant) events carry numeric ts and a scope "s";
  - every pid referenced by a span/instant has a process_name metadata
    event, every (pid, tid) lane a thread_name;
  - per (pid, tid) lane, span *end* timestamps (ts + dur) are
    non-decreasing: lanes are written from per-thread rings in emission
    order, and a span is emitted when it ends. (Starts may regress: an
    operation span encloses the tx/quiesce spans recorded inside it.)

The summary prints, per run: the run label, event counts, how writers
moved across the HTM -> ROT -> NS fallback ladder (path transitions), the
abort breakdown by cause, and time spent in quiescence barriers and
reader stalls -- i.e. the fallback/abort timeline at a glance.

Exit codes:
    0  file is valid (summary printed unless --validate)
    1  validation failed
    2  unreadable/malformed input or usage error
"""

import argparse
import collections
import json
import sys

VALID_PHASES = {"M", "X", "i"}

REQUIRED_OTHER_DATA = ("generator", "total_events", "dropped_events")


def fail(errors, message):
    errors.append(message)
    return False


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate(doc):
    """Returns (ok, errors, events). Collects up to 20 errors."""
    errors = []
    if not isinstance(doc, dict):
        return False, ["top level is not a JSON object"], []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return False, ["traceEvents missing or not a list"], []
    other = doc.get("otherData")
    if not isinstance(other, dict):
        fail(errors, "otherData missing or not an object")
    else:
        for key in REQUIRED_OTHER_DATA:
            if key not in other:
                fail(errors, f"otherData.{key} missing")

    named_pids = set()
    named_lanes = set()
    used_pids = set()
    used_lanes = set()
    last_span_end = {}  # (pid, tid) -> ts + dur

    for i, event in enumerate(events):
        if len(errors) >= 20:
            errors.append("... (more errors suppressed)")
            break
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(errors, f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                fail(errors, f"{where}: missing {key}")
        ph = event.get("ph")
        if ph not in VALID_PHASES:
            fail(errors, f"{where}: unexpected phase {ph!r}")
            continue
        pid, tid = event.get("pid"), event.get("tid")
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(pid)
            elif event.get("name") == "thread_name":
                named_lanes.add((pid, tid))
            continue
        used_pids.add(pid)
        used_lanes.add((pid, tid))
        if not is_number(event.get("ts")) or event["ts"] < 0:
            fail(errors, f"{where}: ts missing/negative")
            continue
        if not isinstance(event.get("args"), dict):
            fail(errors, f"{where}: args missing or not an object")
        if ph == "X":
            if not is_number(event.get("dur")) or event["dur"] < 0:
                fail(errors, f"{where}: dur missing/negative")
                continue
            lane = (pid, tid)
            end = event["ts"] + event["dur"]
            # 1e-6 us slack: ts and dur are rounded separately, so equal
            # modeled end times can differ by a float ulp here.
            if end < last_span_end.get(lane, 0.0) - 1e-6:
                fail(errors, f"{where}: span ends before its lane predecessor")
            last_span_end[lane] = max(end, last_span_end.get(lane, 0.0))
        elif ph == "i":
            if event.get("s") not in ("t", "p", "g"):
                fail(errors, f"{where}: instant scope s missing/invalid")

    for pid in sorted(used_pids - named_pids):
        fail(errors, f"pid {pid} has events but no process_name metadata")
    for lane in sorted(used_lanes - named_lanes):
        fail(errors, f"lane pid={lane[0]} tid={lane[1]} has no thread_name metadata")

    return not errors, errors, events


def run_labels(events):
    labels = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            labels[event["pid"]] = event.get("args", {}).get("name", "?")
    return labels


def summarize(doc, events, max_runs):
    labels = run_labels(events)
    other = doc.get("otherData", {})
    print(f"generator:       {other.get('generator', '?')}")
    print(f"emitted events:  {other.get('total_events', '?')} "
          f"(dropped by ring wrap: {other.get('dropped_events', '?')}, "
          f"unpaired ends: {other.get('unpaired_span_ends', '?')})")
    print(f"runs:            {other.get('runs', len(labels))}")

    per_run = collections.defaultdict(lambda: {
        "lanes": set(),
        "spans": collections.Counter(),
        "span_dur": collections.Counter(),
        "instants": collections.Counter(),
        "tx_outcomes": collections.Counter(),
    })
    for event in events:
        ph = event.get("ph")
        if ph not in ("X", "i"):
            continue
        run = per_run[event["pid"]]
        run["lanes"].add(event["tid"])
        if ph == "X":
            run["spans"][event["name"]] += 1
            run["span_dur"][event["name"]] += event.get("dur", 0.0)
            if event["name"].startswith("tx:"):
                run["tx_outcomes"][event["args"].get("outcome", "?")] += 1
        else:
            run["instants"][event["name"]] += 1

    shown = 0
    for pid in sorted(per_run):
        if shown >= max_runs:
            print(f"\n... {len(per_run) - shown} more runs (raise --runs to show)")
            break
        shown += 1
        run = per_run[pid]
        print(f"\n== run {pid - 1}: {labels.get(pid, '?')} "
              f"({len(run['lanes'])} lanes)")
        ops = {name: run["spans"][name] for name in ("read", "write")
               if run["spans"][name]}
        if ops:
            parts = []
            for name, count in ops.items():
                mean = run["span_dur"][name] / count
                parts.append(f"{count} {name} (mean {mean * 1e3:.0f} ns)")
            print("   ops:        " + ", ".join(parts))
        tx = {k: v for k, v in run["tx_outcomes"].items()}
        if tx:
            print("   tx spans:   " + ", ".join(
                f"{count} {outcome}" for outcome, count in sorted(tx.items())))
        aborts = [(name[len("abort:"):], count)
                  for name, count in run["instants"].items()
                  if name.startswith("abort:")]
        if aborts:
            print("   aborts:     " + ", ".join(
                f"{count}x {cause}" for cause, count in
                sorted(aborts, key=lambda kv: -kv[1])))
        paths = [(name[len("path:"):], count)
                 for name, count in run["instants"].items()
                 if name.startswith("path:")]
        if paths:
            print("   fallbacks:  " + ", ".join(
                f"{count}x {edge}" for edge, count in sorted(paths)))
        for span, label in (("quiesce", "quiesce"), ("reader-wait", "rd-stall")):
            count = run["spans"][span]
            if count:
                total_us = run["span_dur"][span]
                print(f"   {label}:    {count} spans, {total_us * 1e3:.0f} ns total "
                      f"(mean {total_us / count * 1e3:.0f} ns)")


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate and summarize rwle_bench --trace output.")
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--validate", action="store_true",
                        help="validate only; print nothing on success")
    parser.add_argument("--runs", type=int, default=10,
                        help="max runs to detail in the summary (default 10)")
    args = parser.parse_args(argv)

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args.trace}: {err}", file=sys.stderr)
        return 2

    ok, errors, events = validate(doc)
    if not ok:
        print(f"{args.trace}: INVALID", file=sys.stderr)
        for message in errors:
            print(f"  {message}", file=sys.stderr)
        return 1

    if args.validate:
        return 0
    print(f"{args.trace}: valid Chrome trace, {len(events)} events")
    summarize(doc, events, args.runs)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
